//! Online greedy algorithms for capacitated facility leasing.

use crate::instance::CapacitatedInstance;
use leasing_core::engine::{Books, LeasingAlgorithm, Ledger, CATEGORY_CONNECTION, CATEGORY_LEASE};
use leasing_core::framework::Triple;
use leasing_core::interval::candidates_covering;
use leasing_core::time::TimeStep;
use std::collections::HashSet;

/// How the greedy picks a lease type when opening a facility.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LeaseChoice {
    /// Minimize the immediate price `c_{i,k}` (myopic; never overpays now,
    /// may re-lease often).
    CheapestTotal,
    /// Minimize the price per covered step `c_{i,k} / l_k` (invests in long
    /// leases; wins under sustained demand).
    BestRate,
}

/// Per-category cost counters.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CapacitatedCosts {
    /// Total lease payments.
    pub leasing: f64,
    /// Total connection payments.
    pub connection: f64,
}

impl CapacitatedCosts {
    /// Lease plus connection cost.
    pub fn total(&self) -> f64 {
        self.leasing + self.connection
    }
}

/// Greedy online algorithm: each client connects to the cheapest available
/// option — an active facility with spare capacity at its arrival step, or a
/// newly leased one (lease price plus connection).
///
/// Capacity binds *per time step*: a facility serving `cap_i` clients in the
/// current batch is unavailable for further clients of that batch no matter
/// how many leases it holds.
#[derive(Clone, Debug)]
pub struct CapacitatedGreedy<'a> {
    instance: &'a CapacitatedInstance,
    choice: LeaseChoice,
    owned: HashSet<Triple>,
    /// `(client, facility)` assignment log.
    assignments: Vec<(usize, usize)>,
    /// Decision ledger backing the legacy `run` entry point.
    ledger: Ledger,
}

impl<'a> CapacitatedGreedy<'a> {
    /// Creates the greedy with the given lease-type rule.
    pub fn new(instance: &'a CapacitatedInstance, choice: LeaseChoice) -> Self {
        CapacitatedGreedy {
            instance,
            choice,
            owned: HashSet::new(),
            assignments: Vec::new(),
            ledger: Ledger::new(instance.base.structure().clone()),
        }
    }

    /// Whether facility `i` holds an active lease at time `t` (on the
    /// internal legacy-path ledger; when driving through a
    /// [`Driver`](leasing_core::engine::Driver), query the driver's ledger).
    pub fn is_active(&self, i: usize, t: TimeStep) -> bool {
        self.ledger.covered(i, t)
    }

    /// Core greedy assignment step, recording purchases and connection
    /// charges into `ledger`. Facility activity is the ledger's coverage
    /// index, not a private table.
    fn serve_with(&mut self, t: TimeStep, clients: &[usize], books: &mut Books<'_>) {
        let base = &self.instance.base;
        let m = base.num_facilities();
        let mut usage = vec![0usize; m];
        for &j in clients {
            let mut best: Option<(f64, usize, Option<Triple>)> = None;
            for (i, &used) in usage.iter().enumerate() {
                if used >= self.instance.capacity(i) {
                    continue;
                }
                let d = base.distance(i, j);
                let option = if books.covered(i, t) {
                    (d, i, None)
                } else {
                    let (k, price) = self.pick_lease(i);
                    let lease = candidates_covering(base.structure(), t)
                        .into_iter()
                        .find(|l| l.type_index == k)
                        .expect("every type has an aligned candidate per step");
                    (
                        d + price,
                        i,
                        Some(Triple::new(i, lease.type_index, lease.start)),
                    )
                };
                if best.as_ref().is_none_or(|b| option.0 < b.0) {
                    best = Some(option);
                }
            }
            let (_, i, new_lease) =
                best.expect("validated instances always leave an available facility");
            if let Some(triple) = new_lease {
                self.owned.insert(triple);
                books.buy_priced(t, triple, base.cost(i, triple.type_index), CATEGORY_LEASE);
            }
            books.charge(t, i, base.distance(i, j), CATEGORY_CONNECTION);
            usage[i] += 1;
            self.assignments.push((j, i));
        }
    }

    /// Runs the whole instance and returns the final total cost.
    pub fn run(&mut self) -> f64 {
        let mut ledger = std::mem::take(&mut self.ledger);
        for batch in self.instance.base.batches().to_vec() {
            ledger.advance(batch.time);
            self.serve_with(batch.time, &batch.clients, &mut Books::new(&mut ledger));
        }
        self.ledger = ledger;
        self.total_cost()
    }

    /// Total cost paid so far.
    /// Reports the internal legacy-path ledger; when driving through a
    /// [`Driver`](leasing_core::engine::Driver), read the driver's ledger
    /// (or [`Report`](leasing_core::engine::Report)) instead.
    pub fn total_cost(&self) -> f64 {
        self.ledger.total_cost()
    }

    /// Cost split into leasing and connection parts (read from the
    /// ledger's `"lease"` and `"connection"` categories).
    /// Reports the internal legacy-path ledger; when driving through a
    /// [`Driver`](leasing_core::engine::Driver), read the driver's ledger
    /// (or [`Report`](leasing_core::engine::Report)) instead.
    pub fn costs(&self) -> CapacitatedCosts {
        CapacitatedCosts {
            leasing: self.ledger.category_cost(CATEGORY_LEASE),
            connection: self.ledger.category_cost(CATEGORY_CONNECTION),
        }
    }

    /// The internal decision ledger backing the deprecated serve path.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// `(client, facility)` assignments in service order.
    pub fn assignments(&self) -> &[(usize, usize)] {
        &self.assignments
    }

    /// The leases bought so far.
    pub fn owned(&self) -> impl Iterator<Item = &Triple> {
        self.owned.iter()
    }

    fn pick_lease(&self, i: usize) -> (usize, f64) {
        let base = &self.instance.base;
        let structure = base.structure();
        let mut best = (0usize, f64::INFINITY);
        for k in 0..structure.num_types() {
            let price = base.cost(i, k);
            let score = match self.choice {
                LeaseChoice::CheapestTotal => price,
                LeaseChoice::BestRate => price / structure.length(k) as f64,
            };
            if score < best.1 {
                best = (k, score);
            }
        }
        (best.0, base.cost(i, best.0))
    }
}

impl<'a> LeasingAlgorithm for CapacitatedGreedy<'a> {
    /// The batch of (globally numbered) clients arriving at a time step.
    type Request = Vec<usize>;

    fn on_request(&mut self, time: TimeStep, clients: Vec<usize>, mut books: Books<'_>) {
        self.serve_with(time, &clients, &mut books);
    }
}

/// Whether `assignments` (paired with the bought `owned` leases) is a valid
/// capacitated solution: every client is assigned to a facility that is
/// active at the client's arrival step, and no facility exceeds its per-step
/// capacity.
pub fn is_feasible_assignment(
    instance: &CapacitatedInstance,
    owned: &HashSet<Triple>,
    assignments: &[(usize, usize)],
) -> bool {
    let base = &instance.base;
    let structure = base.structure();
    // Client -> assigned facility (every client exactly once).
    let mut assigned = vec![None; base.num_clients()];
    for &(j, i) in assignments {
        if j >= base.num_clients() || i >= base.num_facilities() || assigned[j].is_some() {
            return false;
        }
        assigned[j] = Some(i);
    }
    for batch in base.batches() {
        let mut usage = vec![0usize; base.num_facilities()];
        for &j in &batch.clients {
            let Some(Some(i)) = assigned.get(j).copied() else {
                return false;
            };
            let active = owned
                .iter()
                .any(|tr| tr.element == i && tr.covers(structure, batch.time));
            if !active {
                return false;
            }
            usage[i] += 1;
            if usage[i] > instance.capacity(i) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use facility_leasing::instance::FacilityInstance;
    use facility_leasing::metric::Point;
    use leasing_core::lease::{LeaseStructure, LeaseType};

    fn structure() -> LeaseStructure {
        LeaseStructure::new(vec![LeaseType::new(2, 1.0), LeaseType::new(8, 3.0)]).unwrap()
    }

    /// Two facilities 1 apart; batches of co-located clients at facility 0.
    fn two_facility_instance(batch_sizes: &[usize], cap: usize) -> CapacitatedInstance {
        let facilities = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let batches: Vec<(u64, Vec<Point>)> = batch_sizes
            .iter()
            .enumerate()
            .map(|(t, &n)| (t as u64, vec![Point::new(0.0, 0.0); n]))
            .collect();
        let base = FacilityInstance::euclidean(facilities, structure(), batches).unwrap();
        CapacitatedInstance::uniform(base, cap).unwrap()
    }

    #[test]
    fn single_client_opens_the_nearest_facility() {
        let inst = two_facility_instance(&[1], 1);
        let mut alg = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal);
        let cost = alg.run();
        assert!((cost - 1.0).abs() < 1e-9); // short lease at the co-located site
        assert_eq!(alg.assignments(), &[(0, 0)]);
        let owned: HashSet<Triple> = alg.owned().copied().collect();
        assert!(is_feasible_assignment(&inst, &owned, alg.assignments()));
    }

    #[test]
    fn capacity_forces_a_second_facility_open() {
        // Batch of 2 with capacity 1: the second client must spill to the
        // remote facility even though it is farther.
        let inst = two_facility_instance(&[2], 1);
        let mut alg = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal);
        let _ = alg.run();
        let facilities: HashSet<usize> = alg.assignments().iter().map(|&(_, i)| i).collect();
        assert_eq!(facilities.len(), 2, "both facilities must serve");
        let owned: HashSet<Triple> = alg.owned().copied().collect();
        assert!(is_feasible_assignment(&inst, &owned, alg.assignments()));
    }

    #[test]
    fn capacity_resets_between_time_steps() {
        // One client per step fits within capacity 1 at the same facility.
        let inst = two_facility_instance(&[1, 1], 1);
        let mut alg = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal);
        let _ = alg.run();
        let facilities: HashSet<usize> = alg.assignments().iter().map(|&(_, i)| i).collect();
        assert_eq!(facilities.len(), 1, "the same facility serves both steps");
    }

    #[test]
    fn best_rate_invests_in_long_leases() {
        // Sustained demand: 8 consecutive steps. BestRate leases long once;
        // CheapestTotal re-buys short leases.
        let inst = two_facility_instance(&[1, 1, 1, 1, 1, 1, 1, 1], 1);
        let mut myopic = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal);
        let myopic_cost = myopic.run();
        let mut rate = CapacitatedGreedy::new(&inst, LeaseChoice::BestRate);
        let rate_cost = rate.run();
        assert!(
            rate_cost < myopic_cost,
            "BestRate {rate_cost} must beat CheapestTotal {myopic_cost} under sustained demand"
        );
    }

    #[test]
    fn active_facility_is_reused_without_new_lease() {
        let inst = two_facility_instance(&[1, 1], 2);
        let mut alg = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal);
        let _ = alg.run();
        // Both arrivals (t=0, t=1) fit in one 2-step lease.
        assert!((alg.costs().leasing - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_checker_rejects_overload() {
        let inst = two_facility_instance(&[2], 1);
        let mut owned = HashSet::new();
        owned.insert(Triple::new(0, 1, 0)); // long lease at facility 0
                                            // Both clients at facility 0 exceeds capacity 1.
        assert!(!is_feasible_assignment(&inst, &owned, &[(0, 0), (1, 0)]));
        // Unassigned client is also infeasible.
        assert!(!is_feasible_assignment(&inst, &owned, &[(0, 0)]));
    }
}
