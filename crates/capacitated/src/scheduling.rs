//! The scheduling view of capacitated facility leasing (thesis §4.5).
//!
//! "In order to see this connection, let machines be the facilities and jobs
//! be the clients. A machine can only serve a limited number of jobs per
//! time step. Consequently, studying the leasing variant of FacilityLocation
//! would mean studying the scheduling problem in which machines are rented
//! rather than bought."
//!
//! This module provides that adapter: a machine-renting scheduling instance
//! converts into a [`CapacitatedInstance`] whose "distances" are the
//! job-machine affinity costs (e.g. data-transfer penalties), after which
//! all capacitated algorithms and the ILP apply unchanged.

use crate::instance::{CapacitatedError, CapacitatedInstance};
use facility_leasing::instance::{Batch, FacilityInstance};
use leasing_core::lease::LeaseStructure;
use leasing_core::time::TimeStep;
use serde::{Deserialize, Serialize};

/// A machine that can be rented: per-type rental prices and a jobs-per-step
/// capacity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Rental price per lease type (`rental_costs[k]` pairs with the shared
    /// lease structure's type `k`).
    pub rental_costs: Vec<f64>,
    /// Jobs the machine can process per time step while rented.
    pub capacity: usize,
}

/// A batch of jobs released at one time step; `affinity[j][i]` is the cost
/// of placing job `j` of this batch on machine `i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobBatch {
    /// Release time.
    pub time: TimeStep,
    /// Per-job, per-machine placement costs.
    pub affinity: Vec<Vec<f64>>,
}

/// Converts a machine-renting scheduling instance into a capacitated
/// facility-leasing instance (machines → facilities, jobs → clients,
/// affinities → connection costs).
///
/// # Errors
///
/// Returns a [`CapacitatedError`] if shapes are inconsistent (affinity rows
/// must have one entry per machine) or a batch exceeds total capacity.
pub fn to_capacitated(
    machines: &[Machine],
    structure: LeaseStructure,
    jobs: &[JobBatch],
) -> Result<CapacitatedInstance, CapacitatedError> {
    use facility_leasing::instance::FacilityInstanceError;
    let m = machines.len();
    let costs: Vec<Vec<f64>> = machines.iter().map(|mc| mc.rental_costs.clone()).collect();
    let mut batches = Vec::with_capacity(jobs.len());
    let mut num_jobs = 0usize;
    for jb in jobs {
        let start = num_jobs;
        num_jobs += jb.affinity.len();
        batches.push(Batch {
            time: jb.time,
            clients: (start..num_jobs).collect(),
        });
    }
    // dist[i][j] = affinity of global job j on machine i.
    let mut dist = vec![vec![0.0; num_jobs]; m];
    let mut j = 0usize;
    for jb in jobs {
        for row in &jb.affinity {
            if row.len() != m {
                return Err(CapacitatedError::Base(
                    FacilityInstanceError::SiteOutOfRange(row.len()),
                ));
            }
            for (i, &a) in row.iter().enumerate() {
                dist[i][j] = a;
            }
            j += 1;
        }
    }
    let base = FacilityInstance::from_distances(structure, costs, dist, batches)?;
    let capacities = machines.iter().map(|mc| mc.capacity).collect();
    CapacitatedInstance::new(base, capacities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::optimal_cost;
    use crate::online::{is_feasible_assignment, CapacitatedGreedy, LeaseChoice};
    use leasing_core::framework::Triple;
    use leasing_core::lease::LeaseType;
    use std::collections::HashSet;

    fn structure() -> LeaseStructure {
        LeaseStructure::new(vec![LeaseType::new(2, 1.0), LeaseType::new(8, 3.0)]).unwrap()
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine {
                rental_costs: vec![1.0, 3.0],
                capacity: 1,
            },
            Machine {
                rental_costs: vec![2.0, 5.0],
                capacity: 2,
            },
        ]
    }

    #[test]
    fn conversion_preserves_shapes_and_costs() {
        let jobs = vec![JobBatch {
            time: 0,
            affinity: vec![vec![0.0, 4.0], vec![3.0, 0.5]],
        }];
        let inst = to_capacitated(&machines(), structure(), &jobs).unwrap();
        assert_eq!(inst.base.num_facilities(), 2);
        assert_eq!(inst.base.num_clients(), 2);
        assert_eq!(inst.capacity(0), 1);
        assert!((inst.base.distance(1, 0) - 4.0).abs() < 1e-12);
        assert!((inst.base.distance(0, 1) - 3.0).abs() < 1e-12);
        assert!((inst.base.cost(1, 1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_ragged_affinity_rows() {
        let jobs = vec![JobBatch {
            time: 0,
            affinity: vec![vec![0.0]],
        }];
        assert!(to_capacitated(&machines(), structure(), &jobs).is_err());
    }

    #[test]
    fn greedy_schedules_jobs_feasibly() {
        let jobs = vec![
            JobBatch {
                time: 0,
                affinity: vec![vec![0.0, 2.0], vec![0.1, 2.0]],
            },
            JobBatch {
                time: 1,
                affinity: vec![vec![0.0, 2.0]],
            },
        ];
        let inst = to_capacitated(&machines(), structure(), &jobs).unwrap();
        let mut alg = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal);
        let cost = alg.run();
        assert!(cost > 0.0);
        let owned: HashSet<Triple> = alg.owned().copied().collect();
        assert!(is_feasible_assignment(&inst, &owned, alg.assignments()));
    }

    #[test]
    fn optimum_respects_machine_capacity() {
        // Two jobs at t=0, machine 0 (cheap, loved by both) has capacity 1:
        // the optimum must rent machine 1 for the second job.
        let jobs = vec![JobBatch {
            time: 0,
            affinity: vec![vec![0.0, 1.0], vec![0.0, 1.0]],
        }];
        let inst = to_capacitated(&machines(), structure(), &jobs).unwrap();
        let opt = optimal_cost(&inst, 200_000).unwrap();
        // rent m0 (1) + rent m1 (2) + affinity 0 + 1.
        assert!((opt - 4.0).abs() < 1e-5, "opt {opt}");
    }
}
