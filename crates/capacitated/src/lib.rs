//! **Capacitated facility leasing** — the Chapter 4 outlook extension in
//! which a leased facility can serve only a bounded number of clients per
//! time step.
//!
//! The thesis closes Chapter 4 by pointing at capacitated facility location
//! and its tight connection to scheduling ("machines are rented rather than
//! bought"). This crate builds that extension on top of
//! [`facility_leasing`]:
//!
//! * [`instance`] — [`CapacitatedInstance`]: an uncapacitated
//!   `FacilityInstance` plus per-facility clients-per-step capacities,
//! * [`online`] — [`CapacitatedGreedy`], an online greedy with two
//!   lease-type rules ([`LeaseChoice::CheapestTotal`] vs
//!   [`LeaseChoice::BestRate`]) used as an ablation pair,
//! * [`offline`] — the Figure 4.1 ILP extended with capacity rows, solved
//!   exactly on small instances, plus its LP lower bound,
//! * [`scheduling`] — the machine-renting adapter realizing the thesis'
//!   scheduling correspondence.
//!
//! # Example
//!
//! ```
//! use capacitated_facility::instance::CapacitatedInstance;
//! use capacitated_facility::online::{CapacitatedGreedy, LeaseChoice};
//! use facility_leasing::instance::FacilityInstance;
//! use facility_leasing::metric::Point;
//! use leasing_core::lease::{LeaseStructure, LeaseType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let leases = LeaseStructure::new(vec![
//!     LeaseType::new(2, 1.0),
//!     LeaseType::new(8, 3.0),
//! ])?;
//! let base = FacilityInstance::euclidean(
//!     vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
//!     leases,
//!     vec![(0, vec![Point::new(0.0, 0.0), Point::new(0.2, 0.0)])],
//! )?;
//! // Capacity 1 forces the second client to a different facility.
//! let instance = CapacitatedInstance::uniform(base, 1)?;
//! let cost = CapacitatedGreedy::new(&instance, LeaseChoice::CheapestTotal).run();
//! assert!(cost > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod instance;
pub mod offline;
pub mod online;
pub mod scheduling;

pub use instance::{CapacitatedError, CapacitatedInstance};
pub use online::{CapacitatedCosts, CapacitatedGreedy, LeaseChoice};
pub use scheduling::{to_capacitated, JobBatch, Machine};
