//! Property tests for capacitated facility leasing: greedy feasibility
//! under both lease rules and ILP ordering on random instances.

use capacitated_facility::instance::CapacitatedInstance;
use capacitated_facility::offline;
use capacitated_facility::online::{is_feasible_assignment, CapacitatedGreedy, LeaseChoice};
use facility_leasing::instance::FacilityInstance;
use facility_leasing::metric::Point;
use leasing_core::framework::Triple;
use leasing_core::lease::{LeaseStructure, LeaseType};
use leasing_core::rng::seeded;
use proptest::prelude::*;
use rand::RngExt;
use std::collections::HashSet;

fn structure() -> LeaseStructure {
    LeaseStructure::new(vec![LeaseType::new(2, 1.0), LeaseType::new(8, 3.0)]).unwrap()
}

fn random_instance(seed: u64, facilities: usize, cap: usize) -> CapacitatedInstance {
    let mut rng = seeded(seed);
    let sites: Vec<Point> = (0..facilities)
        .map(|_| Point::new(rng.random(), rng.random()))
        .collect();
    let mut batches = Vec::new();
    let mut t = 0u64;
    let max_batch = facilities * cap;
    for _ in 0..4 {
        t += 1 + rng.random_range(0..3u64);
        let n = 1 + rng.random_range(0..max_batch);
        batches.push((
            t,
            (0..n)
                .map(|_| Point::new(rng.random(), rng.random()))
                .collect::<Vec<_>>(),
        ));
    }
    let base = FacilityInstance::euclidean(sites, structure(), batches).unwrap();
    CapacitatedInstance::uniform(base, cap).expect("batches fit total capacity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The greedy never violates capacity, never strands a client, and
    /// pays for every lease it uses — for both lease-choice rules.
    #[test]
    fn greedy_is_always_feasible(seed in 0u64..400, cap in 1usize..4) {
        let inst = random_instance(seed, 3, cap);
        for choice in [LeaseChoice::CheapestTotal, LeaseChoice::BestRate] {
            let mut alg = CapacitatedGreedy::new(&inst, choice);
            let cost = alg.run();
            prop_assert!(cost > 0.0);
            let owned: HashSet<Triple> = alg.owned().copied().collect();
            prop_assert!(is_feasible_assignment(&inst, &owned, alg.assignments()),
                "{choice:?} infeasible");
            // Connection + leasing split sums to the total.
            let costs = alg.costs();
            prop_assert!((costs.leasing + costs.connection - cost).abs() < 1e-9);
        }
    }

    /// The LP relaxation never exceeds the ILP optimum, which the greedy
    /// never beats.
    #[test]
    fn lp_ilp_greedy_ordering(seed in 0u64..100) {
        let inst = random_instance(seed, 2, 1);
        if inst.base.num_clients() > 4 {
            return Ok(()); // keep the ILP tractable
        }
        let lp = offline::lp_lower_bound(&inst);
        let Some(ilp) = offline::optimal_cost(&inst, 300_000) else {
            return Ok(());
        };
        prop_assert!(lp <= ilp + 1e-6, "LP {lp} above ILP {ilp}");
        let greedy = CapacitatedGreedy::new(&inst, LeaseChoice::CheapestTotal).run();
        prop_assert!(greedy >= ilp - 1e-6, "greedy {greedy} below ILP {ilp}");
    }
}
