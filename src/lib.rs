//! # Online Resource Leasing
//!
//! A faithful, from-scratch Rust reproduction of *“Online Resource
//! Leasing”* (Christine Markarian, 2015; announced at PODC 2015 with
//! Friedhelm Meyer auf der Heide). This facade crate re-exports the whole
//! workspace:
//!
//! | Module | Thesis chapter | Contents |
//! |---|---|---|
//! | [`engine`] | §2.3 | **the unified driver-facing API**: [`LeasingAlgorithm`](engine::LeasingAlgorithm), [`Driver`](engine::Driver), the centralized [`Ledger`](engine::Ledger) and the [`Report`](engine::Report) summary |
//! | [`core`] | Ch. 2 | lease structures, interval model (Lemma 2.6), leasing framework (§2.3), ski rental |
//! | [`lp`] | §2.1 | from-scratch two-phase simplex (warm-startable) + branch-and-bound ILP substrate |
//! | [`oracle`] | — | offline-optimum oracles: exact DPs and certified LP lower bounds behind one [`OfflineOracle`](oracle::OfflineOracle) trait |
//! | [`covering`] | §2.1 | generic online primal-dual covering engine (Buchbinder–Naor) with online dual certificates; Algorithms 2/3/5 as bit-equal instances |
//! | [`parking_permit`] | §2.2 | Meyerson's parking permit problem: deterministic `O(K)` and randomized `O(log K)` algorithms, offline DP optima, lower-bound adversaries |
//! | [`set_cover`] | Ch. 3 | set (multi)cover leasing: `O(log(δK) log n)` randomized algorithm, online set cover variants, §3.5 lower-bound adversaries |
//! | [`facility`] | Ch. 4 | facility leasing: `4(3+K)·H_{l_max}`-competitive primal-dual algorithm, the Nagarajan–Williamson `O(K log n)` prior work, and facility leasing with deadlines (§5.6) |
//! | [`deadlines`] | Ch. 5 | leasing with deadlines (OLD) and set cover leasing with deadlines (SCLD), plus the §5.6 multi-day, capacitated, specific-day-window and randomized extensions |
//! | [`graph`] | — | graph substrate (Dijkstra, Kruskal, generators) |
//! | [`steiner`] | §5.1 | Steiner tree leasing (Meyerson's companion problem) |
//! | [`graph_cover`] | §3.5 | vertex/edge/dominating-set cover leasing |
//! | [`capacitated`] | §4.5 | capacitated facility leasing and the scheduling view |
//! | [`stochastic`] | §3.5/§5.6 | demand distributions, prediction policies, price paths |
//! | [`distributed`] | §4.5 | LOCAL-model simulator, Luby MIS, distributed phase 2 |
//! | [`workloads`] | — | seeded instance generators for every experiment |
//!
//! # Quickstart
//!
//! Every online algorithm in this workspace implements
//! [`LeasingAlgorithm`](engine::LeasingAlgorithm): requests are fed through
//! a generic [`Driver`](engine::Driver) that owns the
//! [`Ledger`](engine::Ledger) — the centralized record of every purchased
//! triple `(i, k, t)` — and turns a run into a serializable
//! [`Report`](engine::Report):
//!
//! ```
//! use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
//! use online_resource_leasing::engine::Driver;
//! use online_resource_leasing::parking_permit::{det::DeterministicPrimalDual, offline};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Permits: 1 day for 1.0, 4 days for 3.0, 16 days for 8.0.
//! let permits = LeaseStructure::new(vec![
//!     LeaseType::new(1, 1.0),
//!     LeaseType::new(4, 3.0),
//!     LeaseType::new(16, 8.0),
//! ])?;
//!
//! // Rainy days arrive online; the driver enforces the online model
//! // (monotone time) with a typed error instead of a panic.
//! let rainy_days = [0u64, 1, 2, 3, 9, 10, 11];
//! let mut driver = Driver::new(DeterministicPrimalDual::new(permits.clone()), permits.clone());
//! driver.submit_batch(rainy_days.iter().map(|&day| (day, ())))?;
//!
//! // The ledger is the single source of truth for money spent.
//! let ledger = driver.ledger();
//! assert_eq!(ledger.leases_bought(), ledger.decision_count());
//!
//! // Compare against the exact offline optimum.
//! let opt = offline::optimal_cost_interval_model(&permits, &rainy_days);
//! let report = driver.report(opt);
//! assert!(report.ratio() <= permits.num_types() as f64 + 1e-9);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

/// Core leasing framework (re-export of [`leasing_core`]).
pub mod core {
    pub use leasing_core::*;
}

/// The unified leasing engine (re-export of [`leasing_core::engine`]):
/// [`LeasingAlgorithm`](engine::LeasingAlgorithm), [`Driver`](engine::Driver),
/// [`Ledger`](engine::Ledger), [`Report`](engine::Report) and
/// [`DriverError`](engine::DriverError).
pub mod engine {
    pub use leasing_core::engine::*;
}

/// LP/ILP substrate (re-export of [`leasing_lp`]).
pub mod lp {
    pub use leasing_lp::*;
}

/// Generic online covering engine, §2.1 (re-export of [`online_covering`]).
pub mod covering {
    pub use online_covering::*;
}

/// Parking permit problem, §2.2 (re-export of [`parking_permit`]).
pub mod parking_permit {
    pub use ::parking_permit::*;
}

/// Set (multi)cover leasing, Chapter 3 (re-export of [`set_cover_leasing`]).
pub mod set_cover {
    pub use set_cover_leasing::*;
}

/// Facility leasing, Chapter 4 (re-export of [`facility_leasing`]).
pub mod facility {
    pub use facility_leasing::*;
}

/// Leasing with deadlines, Chapter 5 (re-export of [`leasing_deadlines`]).
pub mod deadlines {
    pub use leasing_deadlines::*;
}

/// Graph substrate (re-export of [`leasing_graph`]).
pub mod graph {
    pub use leasing_graph::*;
}

/// Steiner tree leasing, §5.1 (re-export of [`steiner_leasing`]).
pub mod steiner {
    pub use steiner_leasing::*;
}

/// Graph covering leasing, Chapter 3 outlook (re-export of
/// [`graph_cover_leasing`]).
pub mod graph_cover {
    pub use graph_cover_leasing::*;
}

/// Capacitated facility leasing, Chapter 4 outlook (re-export of
/// [`capacitated_facility`]).
pub mod capacitated {
    pub use capacitated_facility::*;
}

/// Stochastic leasing, Chapters 3/5 outlook (re-export of
/// [`stochastic_leasing`]).
pub mod stochastic {
    pub use stochastic_leasing::*;
}

/// Distributed leasing, Chapter 4 outlook (re-export of
/// [`distributed_leasing`]).
pub mod distributed {
    pub use distributed_leasing::*;
}

/// Seeded workload generators (re-export of [`leasing_workloads`]).
pub mod workloads {
    pub use leasing_workloads::*;
}

/// Offline-optimum oracles — exact DPs and certified LP lower bounds
/// behind one `OfflineOracle` trait (re-export of [`leasing_oracle`]).
pub mod oracle {
    pub use leasing_oracle::*;
}

/// SimLab — the sharded scenario-matrix simulation harness (re-export of
/// [`leasing_simlab`]).
pub mod simlab {
    pub use leasing_simlab::*;
}
