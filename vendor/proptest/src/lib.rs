//! Workspace-vendored property testing.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the `proptest` API the workspace's tests use: the
//! [`proptest!`] macro, range/tuple/[`collection::vec`] strategies,
//! [`any`], `prop_assert*` and [`ProptestConfig`]. Unlike real proptest
//! there is no shrinking — a failing case panics with the generated inputs
//! so the seed can be reproduced (generation is deterministic per test
//! name).

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// Number of cases to run per property (mirrors proptest's config knob).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a property case failed (carried through `Result` by `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Marks the case as rejected by `prop_assume!` (treated as skipped).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: format!("__proptest_reject__{}", message.into()),
        }
    }

    /// Whether this error is an assumption rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.message.starts_with("__proptest_reject__")
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug + Clone,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// A strategy generating a value, building a second strategy from it,
    /// and drawing from that (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug + Clone,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Copy, Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical [`Any`] strategy.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngExt;
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngExt;
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy always yielding a fixed value.
#[derive(Copy, Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Copy, Clone, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// A half-open range of lengths.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), *r.end() + 1)
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            use rand::RngExt;
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => {
                    assert!(lo < hi, "empty vec length range");
                    rng.random_range(lo..hi)
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner internals used by the generated test bodies.

    pub use super::{ProptestConfig, TestCaseError};

    /// The `Result` type property bodies evaluate to.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! Everything the property tests import.

    pub use super::collection;
    pub use super::test_runner::TestCaseResult;
    pub use super::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test seed derived from the test path (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `cases` generated cases of `body` over `strategy`.
///
/// # Panics
///
/// Panics with the generated inputs on the first failing case.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_name));
    let mut executed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(16).max(64);
    while executed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property {test_name} rejected too many cases (prop_assume too strict)"
        );
        let input = strategy.generate(&mut rng);
        match body(input.clone()) {
            Ok(()) => executed += 1,
            Err(e) if e.is_rejection() => continue,
            Err(e) => panic!(
                "property {test_name} failed after {executed} passing cases\n\
                 input: {input:?}\n{e}"
            ),
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block runs
/// against `cases` random inputs (default 256, overridable with
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $($(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$attr])*
            fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Skips the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vecs_respect_length_ranges(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_any_compose(pair in (0usize..4, any::<bool>())) {
            let (n, b) = pair;
            prop_assert!(n < 4);
            let _ = b;
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }
}
