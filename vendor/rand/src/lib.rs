//! Workspace-vendored random number generation.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the (small) subset of the `rand` API the workspace uses:
//! [`Rng`]/[`RngExt`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the seeded
//! experiments require.

/// Core source of randomness: a stream of `u64` words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Rng::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a deterministic seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "at large" (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly; implemented for `Range` and `RangeInclusive`
/// over the primitive integers and floats.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A value from the standard distribution of `T` (uniform in `[0, 1)`
    /// for floats, uniform over all values for integers and `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngExt};

    /// Random reordering and selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_live_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.random_range(0usize..=3);
            assert!(inc <= 3);
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 32 elements should move something");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(4u32..4);
    }
}
