//! Workspace-vendored serialization facade.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of `serde` the workspace relies on: the
//! [`Serialize`]/[`Deserialize`] traits with derive macros, plus a JSON
//! renderer/parser over an owned [`Value`] tree (see [`json`]). Unlike real
//! serde there is no zero-copy visitor machinery — every type serializes
//! through `Value`, which is plenty for instance snapshots, ledgers and
//! bench baselines.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned serialization tree (the data model of the vendored facade).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer (used when the value is negative).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key-value map.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The entry named `key` when this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Looks up `key` in a map value, yielding `Null` for missing keys so
/// `Option` fields deserialize to `None`. Used by the derive macros.
///
/// # Errors
///
/// Returns an error when `value` is not a map.
pub fn value_field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, de::Error> {
    match value {
        Value::Map(_) => Ok(value.get(key).unwrap_or(&NULL)),
        other => Err(de::Error::new(format!(
            "expected a map with field {key}, found {other:?}"
        ))),
    }
}

/// Looks up position `index` in a sequence value. Used by the derive macros.
///
/// # Errors
///
/// Returns an error when `value` is not a sequence or too short.
pub fn value_index(value: &Value, index: usize) -> Result<&Value, de::Error> {
    match value {
        Value::Seq(items) => items
            .get(index)
            .ok_or_else(|| de::Error::new(format!("sequence too short for index {index}"))),
        other => Err(de::Error::new(format!(
            "expected a sequence, found {other:?}"
        ))),
    }
}

/// Extracts a string slice from a value. Used by the derive macros for unit
/// enums.
///
/// # Errors
///
/// Returns an error when `value` is not a string.
pub fn value_str(value: &Value) -> Result<&str, de::Error> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(de::Error::new(format!(
            "expected a string, found {other:?}"
        ))),
    }
}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] when the tree has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}

pub mod de {
    //! Deserialization support types.

    /// Marker for types deserializable without borrowing from the input —
    /// with the owned [`Value`](crate::Value) model, every
    /// [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    /// A deserialization failure with a human-readable message.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Wraps a message.
        pub fn new(message: impl Into<String>) -> Self {
            Error {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for Error {}
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| de::Error::new("unsigned integer out of range")),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| de::Error::new("integer out of range")),
                    other => Err(de::Error::new(format!("expected an integer, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| de::Error::new("integer out of range")),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| de::Error::new("integer out of range")),
                    other => Err(de::Error::new(format!("expected an integer, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Float(v) => Ok(*v as $t),
                    Value::UInt(v) => Ok(*v as $t),
                    Value::Int(v) => Ok(*v as $t),
                    other => Err(de::Error::new(format!("expected a number, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::new(format!(
                "expected a boolean, found {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        value_str(value).map(str::to_string)
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::new(format!(
                "expected a sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                Ok(($($name::from_value(value_index(value, $idx)?)?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::new(format!("expected a map, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::new(format!("expected a map, found {other:?}"))),
        }
    }
}

pub mod json {
    //! JSON rendering and parsing over the [`Value`](crate::Value) tree.

    use super::{de, Deserialize, Serialize, Value};

    /// Renders `value` as compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&value.to_value(), &mut out);
        out
    }

    /// Renders `value` as indented JSON (two-space indent).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value_pretty(&value.to_value(), &mut out, 0);
        out
    }

    /// Parses JSON text into a `T`.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] on malformed JSON or shape mismatches.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, de::Error> {
        let value = parse(text)?;
        T::from_value(&value)
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_float(v: f64, out: &mut String) {
        if v.is_finite() {
            let rendered = format!("{v}");
            out.push_str(&rendered);
        } else {
            // JSON has no infinities/NaN; fall back to null like serde_json's
            // lossy modes.
            out.push_str("null");
        }
    }

    fn write_value(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => write_float(*v, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    write_value(v, out);
                }
                out.push('}');
            }
        }
    }

    fn write_value_pretty(value: &Value, out: &mut String, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            for _ in 0..depth {
                out.push_str("  ");
            }
        };
        match value {
            Value::Seq(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    write_value_pretty(item, out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Value::Map(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    write_value_pretty(v, out, depth + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => write_value(other, out),
        }
    }

    struct Parser<'s> {
        bytes: &'s [u8],
        pos: usize,
    }

    /// Parses JSON text into a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Value, de::Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(de::Error::new("trailing characters after json value"));
        }
        Ok(value)
    }

    impl<'s> Parser<'s> {
        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, de::Error> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| de::Error::new("unexpected end of json input"))
        }

        fn expect(&mut self, byte: u8) -> Result<(), de::Error> {
            if self.peek()? == byte {
                self.pos += 1;
                Ok(())
            } else {
                Err(de::Error::new(format!(
                    "expected `{}` at byte {}",
                    byte as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, de::Error> {
            match self.peek()? {
                b'n' => {
                    if self.literal("null") {
                        Ok(Value::Null)
                    } else {
                        Err(de::Error::new("invalid literal"))
                    }
                }
                b't' => {
                    if self.literal("true") {
                        Ok(Value::Bool(true))
                    } else {
                        Err(de::Error::new("invalid literal"))
                    }
                }
                b'f' => {
                    if self.literal("false") {
                        Ok(Value::Bool(false))
                    } else {
                        Err(de::Error::new("invalid literal"))
                    }
                }
                b'"' => self.string().map(Value::Str),
                b'[' => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    if self.peek()? == b']' {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    loop {
                        items.push(self.value()?);
                        match self.peek()? {
                            b',' => self.pos += 1,
                            b']' => {
                                self.pos += 1;
                                return Ok(Value::Seq(items));
                            }
                            _ => return Err(de::Error::new("expected `,` or `]`")),
                        }
                    }
                }
                b'{' => {
                    self.pos += 1;
                    let mut entries = Vec::new();
                    if self.peek()? == b'}' {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.expect(b':')?;
                        entries.push((key, self.value()?));
                        match self.peek()? {
                            b',' => self.pos += 1,
                            b'}' => {
                                self.pos += 1;
                                return Ok(Value::Map(entries));
                            }
                            _ => return Err(de::Error::new("expected `,` or `}`")),
                        }
                    }
                }
                _ => self.number(),
            }
        }

        /// Reads the four hex digits of a `\uXXXX` escape (cursor already
        /// past the `\u`).
        fn hex_escape(&mut self) -> Result<u32, de::Error> {
            let hex = self
                .bytes
                .get(self.pos..self.pos + 4)
                .ok_or_else(|| de::Error::new("truncated unicode escape"))?;
            let hex =
                std::str::from_utf8(hex).map_err(|_| de::Error::new("invalid unicode escape"))?;
            let code = u32::from_str_radix(hex, 16)
                .map_err(|_| de::Error::new("invalid unicode escape"))?;
            self.pos += 4;
            Ok(code)
        }

        fn string(&mut self) -> Result<String, de::Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err(de::Error::new("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err(de::Error::new("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let mut code = self.hex_escape()?;
                                // Combine UTF-16 surrogate pairs
                                // (\uD83D\uDE00 and friends).
                                if (0xD800..0xDC00).contains(&code) {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(de::Error::new(
                                            "unpaired high surrogate in string",
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex_escape()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(de::Error::new(
                                            "invalid low surrogate in string",
                                        ));
                                    }
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                }
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| de::Error::new("invalid code point"))?,
                                );
                            }
                            _ => return Err(de::Error::new("unknown escape sequence")),
                        }
                    }
                    b => {
                        // Re-decode multi-byte UTF-8 sequences from the source.
                        if b < 0x80 {
                            out.push(b as char);
                        } else {
                            let start = self.pos - 1;
                            let width = match b {
                                0xC0..=0xDF => 2,
                                0xE0..=0xEF => 3,
                                _ => 4,
                            };
                            let slice = self
                                .bytes
                                .get(start..start + width)
                                .ok_or_else(|| de::Error::new("truncated utf-8 sequence"))?;
                            let s = std::str::from_utf8(slice)
                                .map_err(|_| de::Error::new("invalid utf-8 in string"))?;
                            out.push_str(s);
                            self.pos = start + width;
                        }
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, de::Error> {
            self.skip_ws();
            let start = self.pos;
            while self.pos < self.bytes.len()
                && matches!(
                    self.bytes[self.pos],
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
                )
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| de::Error::new("invalid number"))?;
            if text.is_empty() {
                return Err(de::Error::new(format!(
                    "unexpected character at byte {start}"
                )));
            }
            if !text.contains(['.', 'e', 'E']) {
                if let Ok(v) = text.parse::<u64>() {
                    return Ok(Value::UInt(v));
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Int(v));
                }
            }
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| de::Error::new(format!("invalid number literal {text}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_json() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, -3.25)];
        let text = json::to_string(&v);
        assert_eq!(text, "[[1,0.5],[2,-3.25]]");
        let back: Vec<(u64, f64)> = json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_map_to_null() {
        let v: Vec<Option<u32>> = vec![Some(3), None];
        let text = json::to_string(&v);
        assert_eq!(text, "[3,null]");
        let back: Vec<Option<u32>> = json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd".to_string();
        let text = json::to_string(&s);
        let back: String = json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn maps_preserve_entries() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("alpha".to_string(), 1u64);
        m.insert("beta".to_string(), 2u64);
        let text = json::to_string(&m);
        assert_eq!(text, "{\"alpha\":1,\"beta\":2}");
        let back: std::collections::BTreeMap<String, u64> = json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,2").is_err());
        assert!(json::parse("12 34").is_err());
    }

    #[test]
    fn surrogate_pair_escapes_parse_to_astral_chars() {
        let back: String = json::from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
        // Unpaired or malformed surrogates are typed errors, not panics.
        assert!(json::from_str::<String>("\"\\ud83d\"").is_err());
        assert!(json::from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let text = json::to_string_pretty(&v);
        let back: Vec<Vec<u32>> = json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
