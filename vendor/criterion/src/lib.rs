//! Workspace-vendored micro-benchmark harness.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the `criterion` API the workspace's benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `bench_with_input`, [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! warmup + fixed-duration sampling loop (no outlier analysis); results are
//! printed per benchmark and, when `CRITERION_OUTPUT_JSON` names a file, the
//! full run is also written there as machine-readable JSON.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iterations: u64,
    /// Work items (requests, queries, ...) processed per iteration, from
    /// [`BenchmarkGroup::throughput`]; `1` when no throughput was declared.
    pub elements: u64,
}

impl Measurement {
    /// Work items per second: `elements / (mean_ns / 1e9)`.
    pub fn throughput_rps(&self) -> f64 {
        self.elements as f64 * 1e9 / self.mean_ns.max(f64::MIN_POSITIVE)
    }
}

/// Declares how much work one benchmark iteration performs, so reported
/// numbers can carry a requests-per-second rate alongside ns/iteration.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Iterations process this many logical items (requests, queries, ...).
    Elements(u64),
    /// Iterations process this many bytes (treated like elements here).
    Bytes(u64),
}

impl Throughput {
    fn count(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }
}

/// Identifies one benchmark within a group: a function name plus an input
/// parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Just `parameter` (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    measured: Option<(f64, u64)>,
    sample_ms: u64,
}

impl Bencher {
    /// Times `routine`: a short warmup, then batches until the sampling
    /// budget elapses. The mean ns/iteration is recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and initial calibration.
        let calibrate_start = Instant::now();
        let mut calls = 0u64;
        while calibrate_start.elapsed() < Duration::from_millis(5) {
            black_box(routine());
            calls += 1;
        }
        let per_call = calibrate_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let budget = Duration::from_millis(self.sample_ms);
        let batch = ((budget.as_nanos() as f64 / per_call.max(1.0)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < budget {
            for _ in 0..batch {
                black_box(routine());
            }
            iterations += batch;
        }
        let mean = start.elapsed().as_nanos() as f64 / iterations.max(1) as f64;
        self.measured = Some((mean, iterations));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_ms: u64,
    elements: u64,
}

impl BenchmarkGroup<'_> {
    /// Hint for the sampling effort (mapped onto the sampling budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion counts samples; here the budget scales mildly.
        self.sample_ms = (n as u64).clamp(10, 200);
        self
    }

    /// Declares the per-iteration work of subsequent benchmarks in this
    /// group; reported entries then carry a `throughput_rps` rate. Call it
    /// again before each `bench_with_input` when the parameter changes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.elements = throughput.count().max(1);
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        let mut bencher = Bencher {
            measured: None,
            sample_ms: self.sample_ms,
        };
        routine(&mut bencher, input);
        self.criterion.record(full, bencher, self.elements);
        self
    }

    /// Benchmarks `routine` under `id` without an input parameter.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            measured: None,
            sample_ms: self.sample_ms,
        };
        routine(&mut bencher);
        self.criterion.record(full, bencher, self.elements);
        self
    }

    /// Ends the group (kept for API compatibility; recording is eager).
    pub fn finish(&mut self) {}
}

/// The benchmark manager: collects measurements and reports them.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_ms: 60,
            elements: 1,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            measured: None,
            sample_ms: 60,
        };
        routine(&mut bencher);
        self.record(name.into(), bencher, 1);
        self
    }

    fn record(&mut self, id: String, bencher: Bencher, elements: u64) {
        let Some((mean_ns, iterations)) = bencher.measured else {
            eprintln!("warning: benchmark {id} never called Bencher::iter");
            return;
        };
        println!(
            "{id:60} time: {:>12.1} ns/iter  ({iterations} iters)",
            mean_ns
        );
        self.results.push(Measurement {
            id,
            mean_ns,
            iterations,
            elements,
        });
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Writes the collected measurements as JSON to
    /// `$CRITERION_OUTPUT_JSON` when that variable is set.
    ///
    /// An existing baseline at that path is *merged*, not clobbered:
    /// entries from earlier runs whose id this run did not re-measure are
    /// kept, so several bench binaries (e.g. `bench_driver` and
    /// `bench_coverage`) can accumulate into one machine-readable file.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut lines: Vec<String> = Vec::new();
        // Carry over previous entries (our own line-oriented format) that
        // this run did not supersede.
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                let Some(rest) = line.trim().strip_prefix("{\"id\": \"") else {
                    continue;
                };
                let Some(id) = rest.split('"').next() else {
                    continue;
                };
                if self.results.iter().any(|m| m.id == id) {
                    continue;
                }
                lines.push(line.trim().trim_end_matches(',').to_string());
            }
        }
        for m in &self.results {
            lines.push(format!(
                "{{\"id\": \"{}\", \"mean_ns\": {:.2}, \"iterations\": {}, \
                 \"throughput_rps\": {:.1}}}",
                m.id.replace('"', "'"),
                m.mean_ns,
                m.iterations,
                m.throughput_rps(),
            ));
        }
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, line) in lines.iter().enumerate() {
            out.push_str("    ");
            out.push_str(line);
            if i + 1 < lines.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote benchmark baseline to {path}");
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($function(c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("unit");
            group.sample_size(10);
            group.throughput(Throughput::Elements(64));
            group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert!(m.mean_ns > 0.0);
        assert!(m.id.contains("unit/sum/64"));
        assert_eq!(m.elements, 64);
        let expected = 64.0 * 1e9 / m.mean_ns;
        assert!((m.throughput_rps() - expected).abs() < expected * 1e-9);
    }

    #[test]
    fn bench_function_records_under_plain_name() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.measurements()[0].id, "plain");
    }
}
