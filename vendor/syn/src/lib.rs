//! Workspace-vendored Rust source lexer.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of `syn` the workspace relies on: [`parse_file`],
//! which lexes a Rust source file into a flat, lossless token stream with
//! line/column spans. Unlike real `syn` there is no abstract syntax tree —
//! the `leasing-analysis` linter works on syntactic patterns (identifiers,
//! punctuation adjacency, bracket matching, comments for inline waivers),
//! and a faithful token stream is exactly the data those rules need while
//! staying a few hundred lines of dependency-free code.
//!
//! The lexer understands the constructs that would otherwise break naive
//! text matching: line and nested block comments, string/byte-string/raw
//! string literals (any `#` depth), character literals vs. lifetimes, raw
//! identifiers, and numeric literals. Everything else is emitted as
//! single-character punctuation — multi-character operators (`::`, `->`,
//! `>>`) arrive as adjacent punct tokens, which keeps angle-bracket
//! matching in downstream consumers trivial.

/// A 1-based source position.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters, not bytes).
    pub column: usize,
}

/// The lexical class of one token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Ledger`, `fn`, `as`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// String, byte-string, raw-string, character, or numeric literal.
    Literal,
    /// A single punctuation character (`.`, `[`, `<`, `#`, ...).
    Punct(char),
    /// Line (`// ...`) or block (`/* ... */`) comment, doc or plain.
    Comment,
}

/// One lexed token with its source text and start position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// Position of the token's first character.
    pub span: Span,
}

impl Token {
    /// True for comment tokens (insignificant to syntax, significant to
    /// waiver scanning).
    pub fn is_comment(&self) -> bool {
        self.kind == TokenKind::Comment
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A lexed source file: the full token stream, comments included.
#[derive(Clone, Debug, Default)]
pub struct File {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
}

/// A lexing failure (unterminated string or block comment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// Where the offending construct started.
    pub span: Span,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.message, self.span.line, self.span.column
        )
    }
}

impl std::error::Error for Error {}

/// Lexes `source` into a [`File`].
///
/// # Errors
///
/// Returns an [`Error`] for unterminated strings, character literals, or
/// block comments; every other byte sequence lexes (unknown characters
/// become punctuation tokens).
pub fn parse_file(source: &str) -> Result<File, Error> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.column,
        }
    }

    fn push(&mut self, kind: TokenKind, text: String, span: Span) {
        self.tokens.push(Token { kind, text, span });
    }

    fn error(&self, message: &str, span: Span) -> Error {
        Error {
            message: message.to_string(),
            span,
        }
    }

    fn run(mut self) -> Result<File, Error> {
        while let Some(c) = self.peek(0) {
            let span = self.span();
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(span),
                '/' if self.peek(1) == Some('*') => self.block_comment(span)?,
                '"' => self.string(span, String::new())?,
                '\'' => self.char_or_lifetime(span)?,
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(span)?,
                c if is_ident_start(c) => self.ident(span),
                c if c.is_ascii_digit() => self.number(span),
                _ => {
                    let c = self.bump().unwrap_or_default();
                    self.push(TokenKind::Punct(c), c.to_string(), span);
                }
            }
        }
        Ok(File {
            tokens: self.tokens,
        })
    }

    fn line_comment(&mut self, span: Span) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment, text, span);
    }

    fn block_comment(&mut self, span: Span) -> Result<(), Error> {
        let mut text = String::new();
        let mut depth = 0usize;
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    self.bump();
                    self.bump();
                    if depth == 0 {
                        self.push(TokenKind::Comment, text, span);
                        return Ok(());
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => return Err(self.error("unterminated block comment", span)),
            }
        }
    }

    /// Consumes a `"..."` string literal; `prefix` holds any already-read
    /// `b` prefix.
    fn string(&mut self, span: Span, prefix: String) -> Result<(), Error> {
        let mut text = prefix;
        text.extend(self.bump()); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    text.extend(self.bump());
                }
                Some('"') => {
                    text.push('"');
                    self.push(TokenKind::Literal, text, span);
                    return Ok(());
                }
                Some(c) => text.push(c),
                None => return Err(self.error("unterminated string literal", span)),
            }
        }
    }

    /// True when the `r`/`b` at the cursor starts a raw string, byte
    /// string, or raw identifier rather than a plain identifier.
    fn raw_or_byte_prefix(&self) -> bool {
        let mut ahead = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // Skip the `#` depth of a raw string / raw identifier.
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some('"') => true,
            Some('\'') if self.peek(0) == Some('b') && ahead == 1 && hashes == 0 => true,
            Some(c) if hashes == 1 && is_ident_start(c) && ahead == 1 => {
                self.peek(0) == Some('r') // raw identifier `r#type`
            }
            _ => false,
        }
    }

    /// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, and raw
    /// identifiers `r#ident`.
    fn prefixed_literal(&mut self, span: Span) -> Result<(), Error> {
        let mut text = String::new();
        text.extend(self.bump()); // r or b
        if text == "b" && self.peek(0) == Some('r') {
            text.extend(self.bump());
        }
        if text == "b" && self.peek(0) == Some('\'') {
            // Byte literal: same shape as a char literal.
            text.extend(self.bump());
            loop {
                match self.bump() {
                    Some('\\') => {
                        text.push('\\');
                        text.extend(self.bump());
                    }
                    Some('\'') => {
                        text.push('\'');
                        self.push(TokenKind::Literal, text, span);
                        return Ok(());
                    }
                    Some(c) => text.push(c),
                    None => return Err(self.error("unterminated byte literal", span)),
                }
            }
        }
        let mut hashes = 0;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if hashes == 1 && text.starts_with('r') && !text.starts_with("br") {
            if let Some(c) = self.peek(0) {
                if is_ident_start(c) {
                    // Raw identifier: keep lexing ident characters.
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        text.push(c);
                        self.bump();
                    }
                    self.push(TokenKind::Ident, text, span);
                    return Ok(());
                }
            }
        }
        // Raw (byte) string: `"` ... `"` followed by `hashes` hashes.
        if self.peek(0) != Some('"') {
            // Defensive: `raw_or_byte_prefix` said this was a literal, but
            // fall back to punctuation-by-punctuation rather than failing.
            self.push(TokenKind::Ident, text, span);
            return Ok(());
        }
        text.extend(self.bump());
        loop {
            match self.bump() {
                Some('"') => {
                    text.push('"');
                    let mut matched = 0;
                    while matched < hashes && self.peek(0) == Some('#') {
                        matched += 1;
                        text.push('#');
                        self.bump();
                    }
                    if matched == hashes {
                        self.push(TokenKind::Literal, text, span);
                        return Ok(());
                    }
                }
                Some(c) => text.push(c),
                None => return Err(self.error("unterminated raw string literal", span)),
            }
        }
    }

    /// Disambiguates `'a'` / `'\n'` (char literals) from `'a` / `'static`
    /// (lifetimes).
    fn char_or_lifetime(&mut self, span: Span) -> Result<(), Error> {
        let mut text = String::new();
        text.extend(self.bump()); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                loop {
                    match self.bump() {
                        Some('\\') => {
                            text.push('\\');
                            text.extend(self.bump());
                        }
                        Some('\'') => {
                            text.push('\'');
                            self.push(TokenKind::Literal, text, span);
                            return Ok(());
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.error("unterminated character literal", span)),
                    }
                }
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'x' (char) or 'x / 'xyz (lifetime).
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                    self.push(TokenKind::Literal, text, span);
                } else {
                    self.push(TokenKind::Lifetime, text, span);
                }
                Ok(())
            }
            Some(_) => {
                // Non-alphanumeric char literal like ' ' or '['.
                text.extend(self.bump());
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                    self.push(TokenKind::Literal, text, span);
                } else {
                    // Lone quote — emit as punctuation and move on.
                    self.push(TokenKind::Punct('\''), text, span);
                }
                Ok(())
            }
            None => Err(self.error("unterminated character literal", span)),
        }
    }

    fn ident(&mut self, span: Span) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident, text, span);
    }

    /// Numeric literal. Exact numeric grammar is irrelevant downstream; the
    /// token only needs to swallow digits, radix prefixes, `_` separators,
    /// type suffixes, and a fractional part — while leaving `0..n` range
    /// syntax as separate punctuation.
    fn number(&mut self, span: Span) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let fractional_dot =
                c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.');
            if c.is_ascii_alphanumeric() || c == '_' || fractional_dot {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, span);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        parse_file(src)
            .expect("lexes")
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_puncts_and_numbers() {
        let toks = kinds("let x = foo.bar[0] + 1.5;");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "foo", ".", "bar", "[", "0", "]", "+", "1.5", ";"]
        );
        assert_eq!(toks[0].0, TokenKind::Ident);
        assert_eq!(toks[2].0, TokenKind::Punct('='));
        assert_eq!(toks[7].0, TokenKind::Literal);
    }

    #[test]
    fn range_syntax_is_not_swallowed_by_numbers() {
        let texts: Vec<String> = kinds("0..n").into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, vec!["0", ".", ".", "n"]);
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let toks = kinds(r#"let s = "panic! unwrap [0] // not a comment";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            2
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("not a comment")));
    }

    #[test]
    fn escaped_quotes_and_raw_strings_lex() {
        let toks = kinds(r###"("a\"b", r"raw", r#"ra"w"#, br##"x"##, b"bytes")"###);
        let lits = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .count();
        assert_eq!(lits, 5);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { m('x', '\\n', ' '); }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Literal && t.starts_with('\''))
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn comments_are_preserved_with_spans() {
        let file = parse_file("a // lint:allow(panic: fine)\n/* block\n*/ b").expect("lexes");
        let comments: Vec<&Token> = file.tokens.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("lint:allow"));
        assert_eq!(comments[0].span.line, 1);
        assert_eq!(comments[1].span.line, 2);
        let b = file.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.span.line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still outer */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn unterminated_constructs_error_with_position() {
        assert!(parse_file("\"open").is_err());
        assert!(parse_file("/* open").is_err());
        let err = parse_file("x\n  \"open").expect_err("unterminated");
        assert_eq!(err.span.line, 2);
        assert!(err.to_string().contains("unterminated"));
    }
}
