//! Workspace-vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no network access, so this proc-macro crate
//! re-implements the subset of `serde_derive` the workspace needs: plain
//! (non-generic) structs with named fields, tuple structs, and enums with
//! unit variants. The generated impls target the vendored `serde` facade's
//! value-tree data model ([`serde::Value`]).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving item.
enum Item {
    /// `struct Name { a: A, b: B }` — field names in declaration order.
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(A, B);` — number of fields.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { X, Y }` — unit variant names.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Parses the item a derive macro was attached to. Panics (compile error)
/// on shapes the vendored derive does not support.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`, including doc comments) and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _scope = tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => panic!("unsupported token before item keyword: {other}"),
            None => panic!("expected a struct or enum"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected an item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic items ({name})");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("expected an item body for {name}, found {other:?}"),
    };
    if kind == "enum" {
        let variants = parse_unit_variants(&name, body.stream());
        return Item::UnitEnum { name, variants };
    }
    match body.delimiter() {
        Delimiter::Brace => Item::NamedStruct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        Delimiter::Parenthesis => Item::TupleStruct {
            name,
            arity: count_top_level_fields(body.stream()),
        },
        other => panic!("unsupported struct body delimiter {other:?} for {name}"),
    }
}

/// Field names of a brace-delimited struct body: the identifier directly
/// before each top-level `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility ahead of the field name.
        let field = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _bracket = tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _scope = tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other}"),
                None => return fields,
            }
        };
        fields.push(field);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type: everything up to the next top-level comma. Generic
        // argument lists nest via `<`/`>` which are Puncts, so track depth.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Number of top-level comma-separated fields in a tuple-struct body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        arity + 1
    } else {
        arity
    }
}

/// Variant names of an enum body; panics on data-carrying variants.
fn parse_unit_variants(name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match tokens.next() {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(other) => panic!(
                        "the vendored serde derive supports only unit enum variants \
                         ({name}::{id} carries {other})"
                    ),
                }
            }
            Some(other) => panic!("unexpected token in enum body: {other}"),
            None => break,
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {} }}.to_string())\n\
                     }}\n\
                 }}",
                arms.join(" ")
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value_field(value, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::de::Error> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| {
                    format!("::serde::Deserialize::from_value(::serde::value_index(value, {i})?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::de::Error> {{\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::de::Error> {{\n\
                         match ::serde::value_str(value)? {{\n\
                             {}\n\
                             other => Err(::serde::de::Error::new(format!(\n\
                                 \"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(" ")
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}
