//! Prior work vs the thesis: two online facility-leasing strategies side
//! by side (thesis §4.1 vs §4.3).
//!
//! ```text
//! cargo run --release --example prior_work_comparison
//! ```
//!
//! A subcontractor (the Chapter 1.3 narrative) leases cloud machines near
//! its clients. Before the thesis, the state of the art was the
//! Nagarajan–Williamson sequential primal-dual with an `O(K log n)`
//! guarantee — fine for short engagements, but its bound grows with the
//! number of clients `n`. The Chapter 4 algorithm batches each day's
//! clients and prunes conflicts per lease type, earning a guarantee that
//! depends only on the lease structure (`4(3+K)·H_{l_max}`) — the business
//! can run forever without the guarantee degrading.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::facility::nagarajan_williamson::NagarajanWilliamson;
use online_resource_leasing::facility::offline;
use online_resource_leasing::facility::online::PrimalDualFacility;
use online_resource_leasing::facility::series::{h_lmax_rounds, ArrivalPattern};
use online_resource_leasing::workloads::facilities::facility_instance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Machines: lease 4 days for 2.0 or 16 days for 6.0.
    let leases = LeaseStructure::new(vec![LeaseType::new(4, 2.0), LeaseType::new(16, 6.0)])?;
    let k = leases.num_types() as f64;

    println!("horizon | n   | thesis | prior work | thesis bound | prior bound");
    println!("--------+-----+--------+------------+--------------+------------");
    for steps in [8usize, 16, 32, 64] {
        let mut rng = seeded(2015);
        let inst = facility_instance(
            &mut rng,
            5,
            leases.clone(),
            ArrivalPattern::Constant(2),
            steps,
            50.0,
        );
        let n = inst.num_clients();
        let opt =
            offline::optimal_cost(&inst, 50_000).unwrap_or_else(|| offline::lp_lower_bound(&inst));

        let thesis = PrimalDualFacility::new(&inst).run();
        let prior = NagarajanWilliamson::new(&inst).run();
        let timed: Vec<(u64, usize)> = inst
            .batches()
            .iter()
            .map(|b| (b.time, b.clients.len()))
            .collect();
        let h = h_lmax_rounds(&timed, leases.l_max());
        println!(
            "{steps:7} | {n:3} | {:6.3} | {:10.3} | {:12.1} | {:10.1}",
            thesis / opt,
            prior / opt,
            4.0 * (3.0 + k) * h,
            k * (n as f64).log2(),
        );
    }
    println!();
    println!("Both stay near the optimum on random demand, but only the thesis");
    println!("bound is independent of n: the prior-work column's guarantee keeps");
    println!("growing as the subcontractor's client base does.");
    Ok(())
}
