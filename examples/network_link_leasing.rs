//! Steiner tree leasing: a service provider leases network links to keep
//! communicating customer pairs connected (the thesis' Chapter 1 network
//! narrative, formalized as Meyerson's SteinerTreeLeasing).
//!
//! ```text
//! cargo run --release --example network_link_leasing
//! ```
//!
//! A random ISP-like topology serves pair requests with the deterministic
//! and randomized online algorithms, compared against the route-then-lease
//! offline heuristic and the naive per-request baseline.

use online_resource_leasing::core::lease::LeaseStructure;
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::graph::generators::connected_erdos_renyi;
use online_resource_leasing::steiner::instance::{PairRequest, SteinerInstance};
use online_resource_leasing::steiner::offline::{buy_per_request, route_then_lease};
use online_resource_leasing::steiner::online::{RandomizedSteinerLeasing, SteinerLeasingOnline};
use rand::RngExt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 2015u64;
    let mut rng = seeded(seed);

    // A 30-node network; link weights are monthly base prices in kEUR.
    let network = connected_erdos_renyi(&mut rng, 30, 0.15, 1.0..4.0);
    println!(
        "network: {} nodes, {} links (seed {seed})",
        network.num_nodes(),
        network.num_edges()
    );

    // Lease a link for 2 days at 1x its weight, 8 days at 2.5x, 32 days at 6x.
    let leases = LeaseStructure::geometric(3, 2, 4, 1.0, 0.65);

    // 120 pair requests over ~60 days; customers mostly re-request the same
    // few routes (sustained traffic), which is where leasing pays off.
    let mut requests = Vec::new();
    let mut t = 0u64;
    for i in 0..120 {
        if i % 2 == 0 {
            t += rng.random_range(0..2u64);
        }
        let (u, v) = if !requests.is_empty() && rng.random::<f64>() < 0.85 {
            let prev: &PairRequest = &requests[rng.random_range(0..requests.len())];
            (prev.u, prev.v)
        } else {
            let u = rng.random_range(0..30);
            let v = (u + 1 + rng.random_range(0..29usize)) % 30;
            (u, v)
        };
        requests.push(PairRequest::new(t, u, v));
    }
    let instance = SteinerInstance::new(network, leases, requests)?;

    let det_cost = SteinerLeasingOnline::new(&instance).run();
    let mut rng2 = seeded(seed ^ 0xFFFF);
    let rand_cost = RandomizedSteinerLeasing::new(&instance, &mut rng2).run();
    let offline = route_then_lease(&instance);
    let naive = buy_per_request(&instance);

    println!("offline route-then-lease: {:>8.2} kEUR", offline.cost);
    println!(
        "deterministic online:     {:>8.2} kEUR  (x{:.2} offline)",
        det_cost,
        det_cost / offline.cost
    );
    println!(
        "randomized online:        {:>8.2} kEUR  (x{:.2} offline)",
        rand_cost,
        rand_cost / offline.cost
    );
    println!(
        "naive per-request buying: {:>8.2} kEUR  (x{:.2} offline — never lease like this)",
        naive.cost,
        naive.cost / offline.cost
    );
    Ok(())
}
