//! Capacitated machine renting: the scheduling view of capacitated
//! facility leasing (thesis §4.5 — "machines are rented rather than
//! bought").
//!
//! ```text
//! cargo run --release --example machine_rental
//! ```
//!
//! Jobs arrive in batches and are placed on rented machines with bounded
//! jobs-per-step capacity; the greedy online scheduler is compared against
//! the exact capacitated ILP.

use online_resource_leasing::capacitated::offline;
use online_resource_leasing::capacitated::online::{CapacitatedGreedy, LeaseChoice};
use online_resource_leasing::capacitated::scheduling::{to_capacitated, JobBatch, Machine};
use online_resource_leasing::core::lease::LeaseStructure;
use online_resource_leasing::core::rng::seeded;
use rand::RngExt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 4004u64;
    let mut rng = seeded(seed);

    // Rental terms shared by all machines: 2 days at 1x, 8 days at 2.5x.
    let terms = LeaseStructure::geometric(2, 2, 4, 1.0, 0.66);

    // Three machines: a cheap single-job box, a mid-range duo and a big
    // quad-capacity server.
    let machines = vec![
        Machine {
            rental_costs: vec![1.0, 2.5],
            capacity: 1,
        },
        Machine {
            rental_costs: vec![1.6, 4.0],
            capacity: 2,
        },
        Machine {
            rental_costs: vec![2.8, 7.0],
            capacity: 4,
        },
    ];

    // Job batches over two weeks; affinity = data-transfer cost per machine.
    let mut jobs = Vec::new();
    let mut t = 0u64;
    for _ in 0..6 {
        t += 1 + rng.random_range(0..3u64);
        let n = 1 + rng.random_range(0..3);
        let affinity: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.random::<f64>() * 0.8).collect())
            .collect();
        jobs.push(JobBatch { time: t, affinity });
    }
    let instance = to_capacitated(&machines, terms, &jobs)?;
    println!(
        "{} jobs in {} batches over {} machines (seed {seed})",
        instance.base.num_clients(),
        instance.base.batches().len(),
        instance.base.num_facilities()
    );

    let myopic = CapacitatedGreedy::new(&instance, LeaseChoice::CheapestTotal).run();
    let invest = CapacitatedGreedy::new(&instance, LeaseChoice::BestRate).run();
    println!("greedy (cheapest rental now): {myopic:>7.2}");
    println!("greedy (best daily rate):     {invest:>7.2}");

    match offline::optimal_cost(&instance, 500_000) {
        Some(opt) => {
            println!("exact ILP optimum:            {opt:>7.2}");
            println!(
                "online/opt: {:.2} (cheapest), {:.2} (best-rate)",
                myopic / opt,
                invest / opt
            );
        }
        None => println!("ILP node budget exhausted (instance too large)"),
    }
    Ok(())
}
