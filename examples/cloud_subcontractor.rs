//! The cloud-subcontractor scenario of thesis §1.3 / Chapter 4.
//!
//! ```text
//! cargo run --release --example cloud_subcontractor
//! ```
//!
//! A subcontractor leases machines from cloud providers (facilities) to
//! serve client requests arriving over time; connection cost is the
//! client-provider latency (distance). The §4.3 primal-dual algorithm
//! decides online when to lease which provider and for how long, and is
//! compared against the greedy lease-or-connect heuristic and the offline
//! optimum.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::facility::baselines::GreedyLease;
use online_resource_leasing::facility::metric::Point;
use online_resource_leasing::facility::offline;
use online_resource_leasing::facility::online::PrimalDualFacility;
use online_resource_leasing::facility::FacilityInstance;
use rand::RngExt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four providers at fixed data-centre locations; lease a machine for a
    // day (2.0) or a week (8.0).
    let providers = vec![
        Point::new(0.0, 0.0),
        Point::new(30.0, 5.0),
        Point::new(10.0, 25.0),
        Point::new(28.0, 28.0),
    ];
    let leases = LeaseStructure::new(vec![LeaseType::new(1, 2.0), LeaseType::new(8, 8.0)])?;

    // Clients phone in over 16 days, clustered near the providers.
    let mut rng = seeded(2015);
    let mut batches = Vec::new();
    for day in 0..16u64 {
        let mut pts = Vec::new();
        for _ in 0..(1 + rng.random_range(0..3usize)) {
            let centre = providers[rng.random_range(0..providers.len())];
            pts.push(Point::new(
                centre.x + rng.random::<f64>() * 6.0 - 3.0,
                centre.y + rng.random::<f64>() * 6.0 - 3.0,
            ));
        }
        batches.push((day, pts));
    }
    let instance = FacilityInstance::euclidean(providers, leases, batches)?;
    println!(
        "{} clients over 16 days, {} providers, K = {} lease types",
        instance.num_clients(),
        instance.num_facilities(),
        instance.structure().num_types()
    );

    let mut pd = PrimalDualFacility::new(&instance);
    let pd_cost = pd.run();
    println!(
        "primal-dual online:  total {:>7.2} (leases {:>6.2}, connections {:>6.2}, {} leases bought)",
        pd_cost,
        pd.lease_cost(),
        pd.connection_cost(),
        pd.owned_leases().count()
    );

    let mut greedy = GreedyLease::new(&instance);
    let greedy_cost = greedy.run();
    println!("greedy baseline:     total {greedy_cost:>7.2}");

    match offline::optimal_cost(&instance, 200_000) {
        Some(opt) => {
            println!("offline optimum:     total {opt:>7.2}");
            println!(
                "ratios: primal-dual {:.2}, greedy {:.2}",
                pd_cost / opt,
                greedy_cost / opt
            );
        }
        None => {
            let lb = offline::lp_lower_bound(&instance);
            println!("LP lower bound:      total {lb:>7.2}");
            println!(
                "ratio upper bounds: primal-dual {:.2}, greedy {:.2}",
                pd_cost / lb,
                greedy_cost / lb
            );
        }
    }
    Ok(())
}
