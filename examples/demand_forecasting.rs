//! Stochastic leasing: a subcontractor with last year's demand statistics
//! (thesis §3.5/§5.6 outlook) leases smarter than the worst-case algorithm
//! — and hedges against a wrong forecast. Every policy runs behind the
//! generic engine [`Driver`].
//!
//! ```text
//! cargo run --release --example demand_forecasting
//! ```

use online_resource_leasing::core::engine::Driver;
use online_resource_leasing::core::interval::power_of_two_structure;
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::parking_permit::det::DeterministicPrimalDual;
use online_resource_leasing::parking_permit::offline;
use online_resource_leasing::stochastic::demand::{DemandProcess, MarkovModulated};
use online_resource_leasing::stochastic::policies::{RateThreshold, SwitchCombiner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 99u64;
    // Day / week / quarter leases.
    let leases = power_of_two_structure(&[(0, 1.0), (3, 4.0), (6, 16.0)]);

    // Bursty demand: rainy spells stick around (stay 0.85, turn 0.1).
    let process = MarkovModulated::new(365, 0.85, 0.10);
    let days = process.sample(&mut seeded(seed));
    let opt = offline::optimal_cost_interval_model(&leases, &days);
    println!(
        "{} demand days over a year, stationary rate {:.2} (seed {seed})",
        days.len(),
        process.stationary_rate()
    );
    println!("clairvoyant optimum: {opt:>8.2}\n");

    // Worst-case algorithm: no distributional knowledge.
    let mut worst_case = Driver::new(DeterministicPrimalDual::new(leases.clone()), leases.clone());
    // Informed policy: knows the stationary rate.
    let mut informed = Driver::new(
        RateThreshold::new(leases.clone(), process.stationary_rate()),
        leases.clone(),
    );
    // Hedged policy: follows a (possibly wrong) forecast but simulates the
    // worst-case algorithm alongside and switches when the forecast loses.
    let mut hedged = Driver::new(
        SwitchCombiner::new(
            leases.clone(),
            RateThreshold::new(leases.clone(), 0.05), // a badly wrong forecast
            DeterministicPrimalDual::new(leases.clone()),
        ),
        leases.clone(),
    );
    let requests = || days.iter().map(|&t| (t, ()));
    worst_case.submit_batch(requests())?;
    informed.submit_batch(requests())?;
    hedged.submit_batch(requests())?;

    let report = |name: &str, cost: f64| {
        println!("{name:<28} {cost:>8.2}  (x{:.2} of OPT)", cost / opt);
    };
    report("worst-case primal-dual:", worst_case.cost());
    report("rate-informed policy:", informed.cost());
    report("hedged (wrong forecast):", hedged.cost());
    println!(
        "\nhedge switched leader {} times; inner costs (forecast, worst-case) = {:.2?}",
        hedged.algorithm().switches(),
        hedged.algorithm().inner_costs()
    );
    Ok(())
}
