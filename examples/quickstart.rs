//! Quickstart: the parking permit problem end to end, on the unified
//! `LeasingEngine` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Drives the deterministic `O(K)` algorithm and the randomized
//! `O(log K)` algorithm through the generic [`Driver`], then compares
//! both [`Report`]s against the exact offline optimum.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::engine::Driver;
use online_resource_leasing::parking_permit::det::DeterministicPrimalDual;
use online_resource_leasing::parking_permit::offline;
use online_resource_leasing::parking_permit::rand_alg::RandomizedPermit;
use online_resource_leasing::workloads::rainy_days;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Permits: 1 day for 1 EUR, a 8-day week pass for 5 EUR, a 64-day season
    // pass for 20 EUR.
    let permits = LeaseStructure::new(vec![
        LeaseType::new(1, 1.0),
        LeaseType::new(8, 5.0),
        LeaseType::new(64, 20.0),
    ])?;

    let seed = 7u64;
    let mut rng = seeded(seed);
    let rain = rainy_days(&mut rng, 256, 0.35)?;
    println!("{} rainy days over 256 days (seed {seed})", rain.len());

    // Each algorithm runs behind the same generic driver; the driver owns
    // the ledger and rejects out-of-order requests with a typed error.
    let mut det = Driver::new(
        DeterministicPrimalDual::new(permits.clone()),
        permits.clone(),
    );
    det.submit_batch(rain.iter().map(|&day| (day, ())))?;

    let mut rand_alg = Driver::new(
        RandomizedPermit::new(permits.clone(), &mut rng),
        permits.clone(),
    );
    rand_alg.submit_batch(rain.iter().map(|&day| (day, ())))?;

    let opt = offline::optimal_cost_interval_model(&permits, &rain);
    println!("offline optimum:        {opt:>8.2} EUR");
    let det_report = det.report(opt);
    println!(
        "deterministic online:   {:>8.2} EUR  (ratio {:.2}, bound K = {}, {} leases)",
        det_report.algorithm_cost,
        det_report.ratio(),
        permits.num_types(),
        det_report.leases_bought,
    );
    let rand_report = rand_alg.report(opt);
    println!(
        "randomized online:      {:>8.2} EUR  (ratio {:.2}, bound O(log K), {} leases)",
        rand_report.algorithm_cost,
        rand_report.ratio(),
        rand_report.leases_bought,
    );
    println!(
        "dual certificate:       {:>8.2} EUR  (lower bound on OPT by weak duality)",
        det.algorithm().dual_value()
    );
    println!(
        "ledger: {} decisions, {} still active at day {}",
        det.ledger().decision_count(),
        det.ledger().active_leases(),
        det.ledger().now(),
    );
    Ok(())
}
