//! Quickstart: the parking permit problem end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Buys permits online for a random rainy-day sequence with the
//! deterministic `O(K)` algorithm and the randomized `O(log K)` algorithm,
//! then compares both against the exact offline optimum.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::parking_permit::det::DeterministicPrimalDual;
use online_resource_leasing::parking_permit::offline;
use online_resource_leasing::parking_permit::rand_alg::RandomizedPermit;
use online_resource_leasing::parking_permit::PermitOnline;
use online_resource_leasing::workloads::rainy_days;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Permits: 1 day for 1 EUR, a 8-day week pass for 5 EUR, a 64-day season
    // pass for 20 EUR.
    let permits = LeaseStructure::new(vec![
        LeaseType::new(1, 1.0),
        LeaseType::new(8, 5.0),
        LeaseType::new(64, 20.0),
    ])?;

    let seed = 7u64;
    let mut rng = seeded(seed);
    let rain = rainy_days(&mut rng, 256, 0.35);
    println!("{} rainy days over 256 days (seed {seed})", rain.len());

    let mut det = DeterministicPrimalDual::new(permits.clone());
    for &day in &rain {
        det.serve_demand(day);
    }

    let mut rand_alg = RandomizedPermit::new(permits.clone(), &mut rng);
    for &day in &rain {
        rand_alg.serve_demand(day);
    }

    let opt = offline::optimal_cost_interval_model(&permits, &rain);
    println!("offline optimum:        {opt:>8.2} EUR");
    println!(
        "deterministic online:   {:>8.2} EUR  (ratio {:.2}, bound K = {})",
        det.total_cost(),
        det.total_cost() / opt,
        permits.num_types()
    );
    println!(
        "randomized online:      {:>8.2} EUR  (ratio {:.2}, bound O(log K))",
        rand_alg.total_cost(),
        rand_alg.total_cost() / opt
    );
    println!(
        "dual certificate:       {:>8.2} EUR  (lower bound on OPT by weak duality)",
        det.dual_value()
    );
    Ok(())
}
