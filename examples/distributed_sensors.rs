//! A sensor field elects its own service nodes — no central authority.
//!
//! ```text
//! cargo run --release --example distributed_sensors
//! ```
//!
//! The §4.5 outlook asks for facility leasing "where a solution is computed
//! not by a central authority but a network of distributed sensor nodes".
//! This example runs the full distributed per-step pipeline on a simulated
//! sensor field:
//!
//! 1. **Phase 1 (bidding)** — client sensors grow their dual potentials
//!    geometrically (`1 + ε` per round) and bid towards candidate gateway
//!    nodes; a gateway declares itself open when the bids cover its lease
//!    price. Pure message passing, LOCAL model, round/message accounting.
//! 2. **Phase 2 (conflict resolution)** — temporarily open gateways run
//!    Luby's randomized MIS on their conflict graph so no client pays for
//!    two gateways.
//!
//! The centralized Jain–Vazirani-style primal-dual (the §4.1 offline
//! baseline) runs on the same instance as the quality reference, and the
//! example sweeps `ε` to show the accuracy/latency dial an operator gets.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::distributed::bidding::{distributed_step, BiddingInstance};
use online_resource_leasing::facility::instance::FacilityInstance;
use online_resource_leasing::facility::metric::Point;
use online_resource_leasing::facility::offline_primal_dual;
use rand::RngExt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 100m x 100m field: 5 candidate gateways, 24 client sensors.
    let mut rng = seeded(45);
    let side = 100.0;
    let gateways: Vec<Point> = (0..5)
        .map(|_| Point::new(rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    let sensors: Vec<Point> = (0..24)
        .map(|_| Point::new(rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    let price = 30.0; // leasing a gateway for the step costs 30 energy units
    let distances: Vec<Vec<f64>> = gateways
        .iter()
        .map(|g| sensors.iter().map(|s| g.distance(s)).collect())
        .collect();
    let instance = BiddingInstance::new(vec![price; gateways.len()], distances)?;

    // Centralized reference: the exact primal-dual on the same single step.
    let structure = LeaseStructure::new(vec![LeaseType::new(1, price)])?;
    let central_inst =
        FacilityInstance::euclidean(gateways.clone(), structure, vec![(0, sensors.clone())])
            .expect("valid facility instance");
    let central = offline_primal_dual::solve(&central_inst);
    println!(
        "centralized primal-dual reference: cost {:.1}\n",
        central.total_cost()
    );

    println!(
        "{:>6} | {:>10} | {:>8} | {:>9} | {:>9} | {:>10}",
        "eps", "cost", "vs exact", "rounds", "messages", "gateways"
    );
    println!("{}", "-".repeat(66));
    for eps in [0.5, 0.2, 0.1, 0.05, 0.02] {
        let step = distributed_step(&instance, eps, 45);
        println!(
            "{:>6.2} | {:>10.1} | {:>8.3} | {:>9} | {:>9} | {:>10}",
            eps,
            step.total_cost,
            step.total_cost / central.total_cost(),
            step.bidding.stats.rounds,
            step.bidding.stats.messages,
            step.chosen.len(),
        );
        // Every sensor must be assigned to a chosen gateway.
        assert_eq!(step.assignment.len(), sensors.len());
        assert!(step.assignment.iter().all(|g| step.chosen.contains(g)));
    }

    println!("\nSmaller ε buys accuracy (cost approaches the centralized reference)");
    println!("at the price of more bidding rounds — the LOCAL-model latency dial.");
    println!("No node ever talks to a non-neighbor; the simulator enforces it.");
    Ok(())
}
