//! Certified online leasing: serve demands online *and* prove, live, how
//! far from optimal the spending could possibly be.
//!
//! ```text
//! cargo run --release --example certified_leasing
//! ```
//!
//! A subcontractor leases network nodes (Chapter 3's scenario) without
//! knowing future requests. Competitive analysis promises
//! `O(log(δK) log n)` in the worst case — but a customer asking "how badly
//! are we doing *on this workload*?" deserves a per-run answer, not a
//! worst-case one. The generic covering engine provides it: its fractional
//! phase builds a feasible dual solution as a by-product, and weak duality
//! (Theorem 2.3) turns that into a certified lower bound on what *any*
//! omniscient competitor would have to pay. No LP solver, no hindsight —
//! the bound is available at every moment of the run.
//!
//! The example replays a month of requests, printing the spend, the
//! certificate and the certified ratio after every week, then cross-checks
//! the final certificate against the exact ILP optimum.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::covering::GenericSmcl;
use online_resource_leasing::set_cover::instance::SmclInstance;
use online_resource_leasing::set_cover::offline;
use online_resource_leasing::workloads::set_systems::{random_system, zipf_arrivals};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 20 services, 10 server groups (each group can host some services),
    // leases of 4 days (1 EUR) or 16 days (3 EUR).
    let mut rng = seeded(42);
    let system = random_system(&mut rng, 20, 10, 4);
    let structure = LeaseStructure::new(vec![LeaseType::new(4, 1.0), LeaseType::new(16, 3.0)])?;
    let arrivals = zipf_arrivals(&mut rng, &system, 40, 28, 1.2, 2);
    let instance = SmclInstance::uniform(system, structure, arrivals)
        .expect("generated arrivals are coverable");

    println!("certified online leasing — one month of service requests\n");
    println!(
        "{:>6} | {:>10} | {:>12} | {:>15}",
        "day", "spend", "certificate", "certified ratio"
    );
    println!("{}", "-".repeat(52));

    let mut alg = GenericSmcl::new(&instance, 7);
    let mut served = 0usize;
    for week_end in [7u64, 14, 21, 28] {
        while served < instance.arrivals.len() && instance.arrivals[served].time < week_end {
            let a = instance.arrivals[served];
            alg.serve_arrival(a.time, a.element, a.multiplicity);
            served += 1;
        }
        let cert = alg.certificate();
        let ratio = if cert.lower_bound > 0.0 {
            alg.total_cost() / cert.lower_bound
        } else {
            1.0
        };
        println!(
            "{:>6} | {:>10.2} | {:>12.2} | {:>15.2}",
            week_end,
            alg.total_cost(),
            cert.lower_bound,
            ratio
        );
    }

    // Hindsight check: the certificate must stand below the true optimum.
    let cert = alg.certificate();
    match offline::optimal_cost(&instance, 100_000) {
        Some(opt) => {
            println!("\nexact offline optimum (ILP):    {opt:.2}");
            println!("final certificate:              {:.2}", cert.lower_bound);
            println!(
                "true ratio:                     {:.2}",
                alg.total_cost() / opt
            );
            println!(
                "certified ratio (no hindsight): {:.2}",
                alg.total_cost() / cert.lower_bound
            );
            assert!(
                cert.lower_bound <= opt + 1e-9,
                "certificates never exceed the optimum"
            );
        }
        None => {
            let lp = offline::lp_lower_bound(&instance);
            println!(
                "\nILP out of budget; LP bound: {lp:.2} (certificate {:.2})",
                cert.lower_bound
            );
        }
    }
    println!("\nThe certificate is computed online, from the dual of the fractional");
    println!("phase alone — the spend/certificate gap is a *proven* bound on regret.");
    Ok(())
}
