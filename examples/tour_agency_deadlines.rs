//! The travel-agency scenario opening thesis Chapter 5.
//!
//! ```text
//! cargo run --release --example tour_agency_deadlines
//! ```
//!
//! Tourists want to join a guided tour before they leave town: tourist
//! `(t, d)` can attend on any day of `[t, t+d]`. Guides are hired (leased)
//! for blocks of days, longer blocks cheaper per day. The §5.3 primal-dual
//! algorithm decides when to run tours; the Figure 5.3 tight example shows
//! why procrastination can hurt.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::deadlines::offline;
use online_resource_leasing::deadlines::old::{OldInstance, OldPrimalDual};
use online_resource_leasing::deadlines::tight::{tight_example, tight_example_optimum};
use online_resource_leasing::workloads::arrivals::old_clients;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Guides: one day for 1.0, a 16-day engagement for 4.0.
    let contracts = LeaseStructure::new(vec![LeaseType::new(1, 1.0), LeaseType::new(16, 4.0)])?;

    // A season of tourists with up to a week of flexibility.
    let mut rng = seeded(99);
    let tourists = old_clients(&mut rng, 128, 0.4, 7).expect("valid parameters");
    println!(
        "{} tourists over 128 days, slack up to 7 days",
        tourists.len()
    );
    let instance = OldInstance::new(contracts, tourists)?;

    let mut alg = OldPrimalDual::new(&instance);
    let cost = alg.run();
    println!(
        "online cost {cost:.2} ({} guide contracts)",
        alg.purchases().len()
    );
    match offline::old_optimal_cost(&instance, 200_000) {
        Some(opt) => println!("offline optimum {opt:.2}; ratio {:.2}", cost / opt),
        None => {
            let lb = offline::old_lp_lower_bound(&instance);
            println!("LP lower bound {lb:.2}; ratio <= {:.2}", cost / lb);
        }
    }

    // The adversarial procrastination trap (Figure 5.3).
    println!("\n-- Figure 5.3 tight example (d_max = 64, l_min = 2) --");
    let trap = tight_example(64, 2, 0.01);
    let mut alg = OldPrimalDual::new(&trap);
    let trap_cost = alg.run();
    let trap_opt = tight_example_optimum(0.01);
    println!(
        "online pays {trap_cost:.2}, hindsight pays {trap_opt:.2} -> ratio {:.1} ≈ d_max/l_min = {}",
        trap_cost / trap_opt,
        64 / 2
    );
    Ok(())
}
