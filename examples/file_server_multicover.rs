//! The file-server scenario opening thesis Chapter 3.
//!
//! ```text
//! cargo run --release --example file_server_multicover
//! ```
//!
//! Files live on several servers; users request a file and — for redundancy
//! — want it served from `p` *different* active servers. Activating
//! (leasing) a server for longer is cheaper per day. The Chapter 3
//! randomized online algorithm decides which servers to activate, when and
//! for how long.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::set_cover::instance::{Arrival, SmclInstance};
use online_resource_leasing::set_cover::offline;
use online_resource_leasing::set_cover::online::{is_feasible_cover, SmclOnline};
use online_resource_leasing::workloads::set_systems::{random_system, zipf_arrivals};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 files spread across 16 servers; every file is mirrored on at most
    // 4 servers.
    let mut rng = seeded(333);
    let catalogue = random_system(&mut rng, 40, 16, 4);
    println!(
        "{} files on {} servers (δ = {}, Δ = {})",
        catalogue.num_elements(),
        catalogue.num_sets(),
        catalogue.delta(),
        catalogue.max_set_size()
    );

    // Servers can be activated for 4 days (1.0) or 32 days (4.0).
    let leases = LeaseStructure::new(vec![LeaseType::new(4, 1.0), LeaseType::new(32, 4.0)])?;

    // 60 user requests over 64 days, Zipf-popular files, redundancy 1-2.
    let requests: Vec<Arrival> = zipf_arrivals(&mut rng, &catalogue, 60, 64, 1.2, 2);
    let instance = SmclInstance::uniform(catalogue, leases, requests)?;

    let mut alg = SmclOnline::new(&instance, 2015);
    let cost = alg.run();
    let owned: std::collections::HashSet<_> = alg.owned().copied().collect();
    assert!(is_feasible_cover(&instance, &owned));
    println!(
        "online cost {cost:.2} ({} server-leases; {} rounding fallbacks)",
        owned.len(),
        alg.stats().fallbacks
    );

    let (greedy_cost, _) = offline::greedy(&instance);
    println!("offline greedy (hindsight) cost {greedy_cost:.2}");
    match offline::optimal_cost(&instance, 100_000) {
        Some(opt) => println!("offline optimum {opt:.2}; online ratio {:.2}", cost / opt),
        None => {
            let lb = offline::lp_lower_bound(&instance);
            println!("LP lower bound {lb:.2}; online ratio <= {:.2}", cost / lb);
        }
    }
    Ok(())
}
