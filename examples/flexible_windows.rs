//! "Any Tuesday works for me" — service windows with specific allowed days
//! (the §5.6 outlook model).
//!
//! ```text
//! cargo run --release --example flexible_windows
//! ```
//!
//! Chapter 5's travel agency hires tour guides by the block. Some tourists
//! can join any day before they leave (the OLD model); others are only free
//! on particular days — "any Tuesday in the next three weeks". The
//! `deadlines::windows` model takes an explicit set of allowed days per
//! client; its primal-dual algorithm decides which days to run tours on and
//! how long to engage each guide.

use online_resource_leasing::core::lease::{LeaseStructure, LeaseType};
use online_resource_leasing::core::rng::seeded;
use online_resource_leasing::deadlines::windows::{
    window_lp_lower_bound, window_optimal_cost, WindowClient, WindowInstance, WindowPrimalDual,
};
use rand::RngExt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Guide contracts: 2 days for 1.0 or 16 days for 3.0.
    let contracts = LeaseStructure::new(vec![LeaseType::new(2, 1.0), LeaseType::new(16, 3.0)])?;

    // A mixed season over ~9 weeks: weekend-only visitors, Tuesday
    // regulars, and fully flexible tourists.
    let mut rng = seeded(7);
    let mut tourists = Vec::new();
    for day in 0u64..63 {
        if rng.random_bool(0.12) {
            let style = rng.random_range(0..3u8);
            let t = match style {
                // Only free on the next three same-weekdays.
                0 => WindowClient::periodic(day, 7, 3),
                // Two specific days: tomorrow or the end of the fortnight.
                1 => WindowClient::specific(day, vec![day + 1, day + 14])?,
                // Fully flexible for a week (the OLD special case).
                _ => WindowClient::interval(day, 6),
            };
            tourists.push(t);
        }
    }
    println!(
        "{} tourists with mixed flexibility over 63 days",
        tourists.len()
    );

    let instance = WindowInstance::new(contracts, tourists)?;
    let mut alg = WindowPrimalDual::new(&instance);
    let cost = alg.run();
    println!(
        "online cost {cost:.2} with {} guide contracts; dual certificate {:.2}",
        alg.purchases().len(),
        alg.dual_value(),
    );

    match window_optimal_cost(&instance, 200_000) {
        Some(opt) => println!("hindsight optimum {opt:.2}; ratio {:.2}", cost / opt),
        None => {
            let lb = window_lp_lower_bound(&instance);
            println!("LP lower bound {lb:.2}; ratio <= {:.2}", cost / lb);
        }
    }

    // The flexibility pays: the same arrivals forced to be served on the
    // spot (single-day windows) cost strictly more in hindsight.
    let rigid = WindowInstance::new(
        instance.structure.clone(),
        instance
            .clients
            .iter()
            .map(|c| WindowClient::interval(c.arrival, 0))
            .collect(),
    )?;
    if let (Some(flex), Some(stiff)) = (
        window_optimal_cost(&instance, 200_000),
        window_optimal_cost(&rigid, 200_000),
    ) {
        println!(
            "\nvalue of flexibility: optimum {flex:.2} with day choices vs {stiff:.2} without \
             ({:.0}% saved)",
            100.0 * (1.0 - flex / stiff)
        );
    }
    Ok(())
}
